// Command sibench regenerates the paper's evaluation (Section 5): the two
// panels of Figure 4 (throughput vs. contention for 4 and 24 concurrent
// ad-hoc queries under MVCC, S2PL and BOCC), the prose claims C1–C3, and
// the ablation experiments listed in DESIGN.md.
//
// Usage:
//
//	sibench -figure 4                    # both Figure 4 panels
//	sibench -claim c1|c2|c3              # Section 5 prose claims
//	sibench -cell -protocol mvcc -theta 2 -readers 24   # one cell
//	sibench -scaling                     # commit-path scaling: writers 1..16
//	sibench -ingest                      # dataflow ingest rate (elems/s)
//	sibench -ingest -lanes 4             # ... with 4 parallel keyed lanes
//	sibench -ingest -lanes 4 -window 8   # ... with the fused commit spine
//	sibench -ingest -lanes 4 -window auto  # ... with the self-tuning spine
//	sibench -ingest -json                # ... as one JSON object
//	sibench -ingest -lanesweep -json     # lanes 1,2,4,8 as a JSON array
//	sibench -mixed                       # mixed read/write: ingest spine +
//	                                     # concurrent snapshot scans, point
//	                                     # reads and index lookups (baseline
//	                                     # cell + mixed cell)
//	sibench -mixed -scanlanes 8 -json    # ... as a JSON array
//	sibench -faults                      # fault-injection smoke: sticky sync
//	                                     # failure mid-run; time-to-fail-stop,
//	                                     # no post-failure commit acked
//	sibench -faults -failat 100          # ... failing the 100th fsync
//	sibench -feed                        # table→stream feed rate, sequential watcher
//	sibench -feed -partitions 4          # ... through a 4-way partitioned feed
//	sibench -feed -partsweep -json       # seq,1,2,4,8 partitions as a JSON array
//	sibench -pipeline                    # end-to-end: ingest lanes → table →
//	                                     # feed partitions → downstream lanes
//	sibench -pipeline -fuse=false        # ... through the unfused merge seam
//	sibench -pipeline -pipesweep -json   # fused/unfused × window 1,8 as JSON
//	sibench -adaptive                    # self-tuning spine vs the static
//	                                     # windows on the lsm+sync pipeline
//	sibench -benchjson -backend mem      # lane sweep + feed sweep + pipeline
//	                                     # sweep + adaptive sweep + backend
//	                                     # sweep as one JSON object
//	                                     # (regenerates BENCH_ingest.json)
//	sibench -ingest -store 'cache(256)+lsm'  # ... over a chained backend spec
//	sibench -csv                         # CSV instead of tables
//
// Scale knobs: -tablesize (paper: 1000000), -duration per cell,
// -backend for the registered backend name, -store for a full chained
// spec (overrides -backend), -dir for persistent data directories.
// Backends resolve through the kv adapter registry, so any registered
// spec works: mem, lsm, cache(256)+lsm, fault+mem, ...
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"sistream/internal/bench"
)

func main() {
	var (
		figure    = flag.Int("figure", 0, "reproduce figure 4 (both panels)")
		claim     = flag.String("claim", "", "reproduce a Section 5 claim: c1, c2 or c3")
		cell      = flag.Bool("cell", false, "run a single cell with the flags below")
		scaling   = flag.Bool("scaling", false, "sweep concurrent writers to show group-commit scaling")
		ingest    = flag.Bool("ingest", false, "run the single-writer dataflow ingest benchmark")
		mixed     = flag.Bool("mixed", false, "run the mixed read/write benchmark: the ingest spine with concurrent snapshot scans, point reads and index lookups (ingest-only baseline cell + mixed cell)")
		scanLanes = flag.Int("scanlanes", 4, "mixed: parallel stripes per snapshot scan")
		faults    = flag.Bool("faults", false, "run the fault-injection smoke mode: ingest over a fault store, sticky sync failure mid-run; reports time-to-fail-stop and verifies no post-failure commit is acked")
		failAt    = flag.Int("failat", 0, "faults: durability point (sync) to fail at (0 = halfway)")
		elements  = flag.Int("elements", 1_000_000, "ingest: data elements pushed through the pipeline")
		every     = flag.Int("commitevery", 100, "ingest: tuples per transaction (punctuation interval)")
		keys      = flag.Int("keys", 100_000, "ingest: distinct keys cycled through")
		lanes     = flag.Int("lanes", 1, "ingest: parallel keyed lanes (1 = sequential spine)")
		window    = flag.String("window", "1", "ingest/pipeline: cross-transaction commit window (1 = serialized spine, \"auto\" = self-tuning)")
		laneSweep = flag.Bool("lanesweep", false, "ingest: sweep lanes 1,2,4,8 (JSON: array of results)")
		feed      = flag.Bool("feed", false, "run the table→stream change-feed benchmark")
		parts     = flag.Int("partitions", 0, "feed: partitioned-feed watchers (0 = sequential ToStream); pipeline: feed partitions = downstream lanes")
		partSweep = flag.Bool("partsweep", false, "feed: sweep sequential + partitions 1,2,4,8")
		pipeline  = flag.Bool("pipeline", false, "run the end-to-end pipeline benchmark (ingest lanes → table → feed → downstream lanes)")
		fuse      = flag.Bool("fuse", true, "pipeline: direct partition→lane wiring (false = unfused merge → re-route seam)")
		pipeSweep = flag.Bool("pipesweep", false, "pipeline: sweep fused/unfused × window 1,8 (honors -commitevery/-lanes; partitions = lanes)")
		adaptive  = flag.Bool("adaptive", false, "run the self-tuning spine sweep: window auto vs 1,8 on the lsm+sync pipeline")
		benchJSON = flag.Bool("benchjson", false, "run the ingest lane sweep, the feed partition sweep and the pipeline sweep, emit the BENCH_ingest.json object")
		jsonOut   = flag.Bool("json", false, "ingest/feed: JSON output")
		protocol  = flag.String("protocol", "mvcc", "mvcc | s2pl | bocc")
		backend   = flag.String("backend", "lsm", "registered backend name (mem | lsm | ...)")
		storeSpec = flag.String("store", "", "full backend spec through the kv registry, e.g. 'cache(256)+lsm' (overrides -backend)")
		dir       = flag.String("dir", "", "data directory for persistent backends (default: temp)")
		tableSize = flag.Int("tablesize", 100_000, "keys per state (paper: 1000000)")
		readers   = flag.Int("readers", 4, "concurrent ad-hoc queries")
		writers   = flag.Int("writers", 1, "continuous writer queries")
		txnOps    = flag.Int("ops", 10, "operations per transaction")
		theta     = flag.Float64("theta", 0, "Zipfian contention level")
		duration  = flag.Duration("duration", 2*time.Second, "measured interval per cell")
		sync      = flag.Bool("sync", true, "synchronous (durable) commits")
		check     = flag.Bool("check", false, "enable the multi-state consistency checker")
		csv       = flag.Bool("csv", false, "CSV output")
		states    = flag.Int("states", 2, "states per topology group")
	)
	flag.Parse()

	spec := *backend
	if *storeSpec != "" {
		spec = *storeSpec
	}

	base := bench.Default()
	base.Backend = spec
	base.TableSize = *tableSize
	base.Readers = *readers
	base.Writers = *writers
	base.TxnOps = *txnOps
	base.Theta = *theta
	base.Duration = *duration
	base.Sync = *sync
	base.Protocol = *protocol
	base.States = *states
	base.CheckConsistency = *check

	root := *dir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "sibench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(root)
	}
	cellDirs := 0
	dirFor := func(string, float64) string {
		cellDirs++
		return filepath.Join(root, fmt.Sprintf("cell-%03d", cellDirs))
	}
	base.Dir = dirFor("", 0)

	icfg := bench.DefaultIngest()
	icfg.Protocol = *protocol
	icfg.Backend = spec
	icfg.Dir = base.Dir // unused by volatile specs
	icfg.Elements = *elements
	icfg.CommitEvery = *every
	icfg.Keys = *keys
	icfg.Sync = *sync
	icfg.Lanes = *lanes
	if *window == "auto" {
		icfg.Auto = true
	} else {
		w, err := strconv.Atoi(*window)
		if err != nil {
			fatal(fmt.Errorf("-window wants an integer or \"auto\", got %q", *window))
		}
		icfg.Window = w
	}

	// Sweeps over the lsm backend give every cell a FRESH directory —
	// re-opening a shared one would replay earlier cells' data into the
	// measured run (recovery time, pre-populated levels), exactly like
	// the Figure 4 / scaling sweeps' per-cell dirs.
	freshDir := func() string { return dirFor("", 0) }

	switch {
	case *faults:
		res, err := bench.RunFaults(bench.FaultsConfig{Ingest: icfg, FailAtSync: *failAt})
		if err != nil {
			fatal(err)
		}
		bench.PrintFaults(os.Stdout, res)
	case *mixed:
		results := mixedSweep(icfg, *scanLanes, !*jsonOut, freshDir)
		if *jsonOut {
			if err := bench.WriteMixedJSON(os.Stdout, results); err != nil {
				fatal(err)
			}
		}
	case *benchJSON:
		runBenchJSON(icfg, freshDir)
	case *adaptive:
		runAdaptive(icfg, *jsonOut, freshDir)
	case *pipeline:
		runPipeline(icfg, *parts, *fuse, *pipeSweep, *jsonOut, freshDir)
	case *feed:
		runFeed(icfg, *parts, *partSweep, *jsonOut, freshDir)
	case *ingest:
		if *laneSweep {
			results := ingestLaneSweep(icfg, !*jsonOut, freshDir)
			if *jsonOut {
				if err := bench.WriteIngestJSON(os.Stdout, results); err != nil {
					fatal(err)
				}
			}
			return
		}
		res, err := bench.RunIngest(icfg)
		if err != nil {
			fatal(err)
		}
		if *jsonOut {
			if err := res.WriteJSON(os.Stdout); err != nil {
				fatal(err)
			}
		} else {
			bench.PrintIngest(os.Stdout, res)
		}
	case *figure == 4:
		runFigure4(base, dirFor, *csv)
	case *scaling:
		runScaling(base, dirFor, *csv)
	case *claim != "":
		runClaim(*claim, base, dirFor)
	case *cell:
		res, err := bench.Run(base)
		if err != nil {
			fatal(err)
		}
		if *csv {
			bench.PrintCSV(os.Stdout, []bench.Result{res})
		} else {
			bench.PrintResult(os.Stdout, res)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// backendSweepSpecs is the backend sweep: the same ingest workload over
// the volatile store, the persistent LSM store and the cache tier
// chained over it — the honest cross-backend comparison the adapter
// registry makes possible.
var backendSweepSpecs = []string{"mem", "lsm", "cache(256)+lsm"}

// backendSweep runs the ingest benchmark across backendSweepSpecs on an
// otherwise identical workload — the "Backends" key of
// BENCH_ingest.json. freshDir supplies a new data directory per
// persistent cell.
func backendSweep(icfg bench.IngestConfig, print bool, freshDir func() string) []bench.IngestResult {
	var results []bench.IngestResult
	for _, spec := range backendSweepSpecs {
		icfg.Backend = spec
		icfg.Dir = freshDir() // fresh per cell; unused by volatile specs
		res, err := bench.RunIngest(icfg)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
		if print {
			bench.PrintIngest(os.Stdout, res)
		}
	}
	return results
}

// feedSweepPartitions is the feed sweep: the sequential single-watcher
// path (FeedConfig.Partitions 0) followed by partitioned feeds of 1, 2,
// 4 and 8 watchers. partitions=1 vs sequential isolates the partitioned
// machinery's overhead (router, barrier, merge).
var feedSweepPartitions = []int{0, 1, 2, 4, 8}

// ingestLaneSweep runs the ingest benchmark across lanes 1, 2, 4, 8 —
// the ingest half of BENCH_ingest.json, shared by -lanesweep and
// -benchjson so the two cannot drift apart. freshDir supplies a new
// data directory per lsm cell.
func ingestLaneSweep(icfg bench.IngestConfig, print bool, freshDir func() string) []bench.IngestResult {
	var results []bench.IngestResult
	for _, l := range []int{1, 2, 4, 8} {
		icfg.Lanes = l
		icfg.Dir = freshDir() // fresh per cell; unused by volatile specs
		res, err := bench.RunIngest(icfg)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
		if print {
			bench.PrintIngest(os.Stdout, res)
		}
	}
	return results
}

// feedPartSweep runs the change-feed benchmark across
// feedSweepPartitions — the feed half of BENCH_ingest.json, shared by
// -partsweep and -benchjson. freshDir supplies a new data directory per
// lsm cell.
func feedPartSweep(icfg bench.IngestConfig, print bool, freshDir func() string) []bench.FeedResult {
	var results []bench.FeedResult
	for _, p := range feedSweepPartitions {
		icfg.Dir = freshDir() // fresh per cell; unused by volatile specs
		res, err := bench.RunFeed(bench.FeedConfig{Ingest: icfg, Partitions: p})
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
		if print {
			bench.PrintFeed(os.Stdout, res)
		}
	}
	return results
}

// pipelineSweep runs the end-to-end pipeline benchmark across the fused
// spine's two toggles — direct partition→lane wiring on/off × commit
// window 1/8. Only the swept dimensions are overridden: protocol,
// backend, elements, commit interval and lane count come from icfg (the
// user's flags), with feed partitions = downstream lanes = the ingest
// lane count (the matched shape direct wiring needs). The pipeline half
// of BENCH_ingest.json, shared by -pipesweep and -benchjson (the latter
// pins the canonical small-transaction configuration itself). freshDir
// supplies a new data directory per lsm cell.
func pipelineSweep(icfg bench.IngestConfig, print bool, freshDir func() string) []bench.PipelineResult {
	parts := max(icfg.Lanes, 1)
	// This sweep IS the static windows; -window auto has its own cells
	// (adaptiveSweep).
	icfg.Auto = false
	var results []bench.PipelineResult
	for _, w := range []int{1, 8} {
		for _, fused := range []bool{false, true} {
			icfg.Window = w
			icfg.Dir = freshDir() // fresh per cell; unused by volatile specs
			res, err := bench.RunPipeline(bench.PipelineConfig{Ingest: icfg, Partitions: parts, Fuse: fused})
			if err != nil {
				fatal(err)
			}
			results = append(results, res)
			if print {
				bench.PrintPipeline(os.Stdout, res)
			}
		}
	}
	return results
}

// adaptiveSweep runs the self-tuning pipeline cells: the same shape as
// pipelineSweep's static-window cells, but with the ingest spine under
// the AutoTune controller — unfused and fused wiring. Comparing its
// cells against pipelineSweep's answers whether the controller found
// the static optimum (the bar: within 10% of the best static window).
// The adaptive half of BENCH_ingest.json ("Adaptive"), shared by
// -adaptive and -benchjson. freshDir supplies a new data directory per
// lsm cell.
func adaptiveSweep(icfg bench.IngestConfig, print bool, freshDir func() string) []bench.PipelineResult {
	parts := max(icfg.Lanes, 1)
	icfg.Window = 0
	icfg.Auto = true
	var results []bench.PipelineResult
	for _, fused := range []bool{false, true} {
		icfg.Dir = freshDir() // fresh per cell; unused by volatile specs
		res, err := bench.RunPipeline(bench.PipelineConfig{Ingest: icfg, Partitions: parts, Fuse: fused})
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
		if print {
			bench.PrintPipeline(os.Stdout, res)
		}
	}
	return results
}

// runAdaptive runs the static pipeline sweep and the adaptive cells on
// the lsm backend with synchronous commits (the regime where window
// tuning has an fsync to amortize) and renders both, so one invocation
// answers "did the controller find the static optimum?".
func runAdaptive(icfg bench.IngestConfig, jsonOut bool, freshDir func() string) {
	icfg.Backend = "lsm"
	icfg.Sync = true
	icfg.Auto = false
	static := pipelineSweep(icfg, !jsonOut, freshDir)
	auto := adaptiveSweep(icfg, !jsonOut, freshDir)
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Pipeline []bench.PipelineResult
			Adaptive []bench.PipelineResult
		}{static, auto}); err != nil {
			fatal(err)
		}
	}
}

// runPipeline runs the end-to-end pipeline benchmark: one cell (with the
// caller's lanes/window/partitions/fuse), or the standard sweep.
func runPipeline(icfg bench.IngestConfig, partitions int, fused, sweep, jsonOut bool, freshDir func() string) {
	if sweep {
		results := pipelineSweep(icfg, !jsonOut, freshDir)
		if jsonOut {
			if err := bench.WritePipelineJSON(os.Stdout, results); err != nil {
				fatal(err)
			}
		}
		return
	}
	if partitions < 1 {
		partitions = max(icfg.Lanes, 1)
	}
	res, err := bench.RunPipeline(bench.PipelineConfig{Ingest: icfg, Partitions: partitions, Fuse: fused})
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		if err := bench.WritePipelineJSON(os.Stdout, []bench.PipelineResult{res}); err != nil {
			fatal(err)
		}
	} else {
		bench.PrintPipeline(os.Stdout, res)
	}
}

// runFeed runs the table→stream change-feed benchmark: one cell, or the
// partition sweep.
func runFeed(icfg bench.IngestConfig, partitions int, sweep, jsonOut bool, freshDir func() string) {
	if !sweep {
		res, err := bench.RunFeed(bench.FeedConfig{Ingest: icfg, Partitions: partitions})
		if err != nil {
			fatal(err)
		}
		if jsonOut {
			if err := bench.WriteFeedJSON(os.Stdout, []bench.FeedResult{res}); err != nil {
				fatal(err)
			}
		} else {
			bench.PrintFeed(os.Stdout, res)
		}
		return
	}
	results := feedPartSweep(icfg, !jsonOut, freshDir)
	if jsonOut {
		if err := bench.WriteFeedJSON(os.Stdout, results); err != nil {
			fatal(err)
		}
	}
}

// mixedSweep runs the mixed read/write benchmark as two cells on an
// identical ingest workload: first the ingest-only baseline (no index,
// no readers — RunIngest's exact pipeline through the mixed harness, so
// any index/reader overhead is measured against it, not guessed), then
// the fully mixed cell (secondary index maintained in the write path,
// plus concurrent snapshot scanners, point readers and index readers).
// The "Mixed" key of BENCH_ingest.json, shared by -mixed and -benchjson.
// freshDir supplies a new data directory per persistent cell.
func mixedSweep(icfg bench.IngestConfig, scanLanes int, print bool, freshDir func() string) []bench.MixedResult {
	cells := []bench.MixedConfig{
		{Ingest: icfg},
		{Ingest: icfg, Index: true, Scanners: 1, PointReaders: 1, IndexReaders: 1, ScanLanes: scanLanes},
	}
	var results []bench.MixedResult
	for _, cell := range cells {
		cell.Ingest.Dir = freshDir() // fresh per cell; unused by volatile specs
		res, err := bench.RunMixed(cell)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
		if print {
			bench.PrintMixed(os.Stdout, res)
		}
	}
	return results
}

// runBenchJSON regenerates the checked-in BENCH_ingest.json: the ingest
// lane sweep, the feed partition sweep, the end-to-end pipeline sweep
// (fused/unfused × commit window 1/8), the adaptive cells (the same
// pipeline under the self-tuning spine), the backend sweep (mem vs lsm
// vs cache(256)+lsm on one workload) and the mixed read/write sweep
// (ingest-only baseline cell + concurrent scans/point-reads/index-lookups
// cell) as one JSON object with keys "Ingest", "Feed", "Pipeline",
// "Adaptive", "Backends" and "Mixed". The
// checked-in file is produced with `sibench -benchjson -backend mem`.
// Ingest and Feed run on the chosen backend; the Pipeline and Adaptive
// sweeps ALWAYS run on the lsm backend with synchronous commits —
// cross-transaction commit batching amortizes the per-commit fsync, and
// a memory backend has no fsync to amortize, so a mem-backed sweep
// would (correctly but uninformatively) show fan-in 1. The backend
// sweep likewise pins its own specs — comparing backends is its point.
func runBenchJSON(icfg bench.IngestConfig, freshDir func() string) {
	icfg.Auto = false
	ingests := ingestLaneSweep(icfg, false, freshDir)
	icfg.Lanes = 1
	// The mixed sweep runs immediately after the ingest sweep: its
	// ingest-only baseline cell is the number the mixed cell is judged
	// against, so the two must be measured under the same process state.
	mixeds := mixedSweep(icfg, 4, false, freshDir)
	feeds := feedPartSweep(icfg, false, freshDir)
	backends := backendSweep(icfg, false, freshDir)
	// The canonical pipeline configuration of the checked-in file: the
	// small-transaction workload cross-transaction batching targets.
	icfg.Backend = "lsm"
	icfg.Sync = true
	icfg.CommitEvery = 8
	icfg.Lanes = 4
	pipelines := pipelineSweep(icfg, false, freshDir)
	adaptives := adaptiveSweep(icfg, false, freshDir)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Ingest   []bench.IngestResult
		Feed     []bench.FeedResult
		Pipeline []bench.PipelineResult
		Adaptive []bench.PipelineResult
		Backends []bench.IngestResult
		Mixed    []bench.MixedResult
	}{ingests, feeds, pipelines, adaptives, backends, mixeds}); err != nil {
		fatal(err)
	}
}

var (
	figureThetas    = []float64{0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0}
	figureProtocols = []string{"mvcc", "s2pl", "bocc"}
)

// runFigure4 reproduces both panels: readers = 4 and readers = 24,
// theta swept 0..3, all three protocols.
func runFigure4(base bench.Config, dirFor func(string, float64) string, csv bool) {
	var all []bench.Result
	for _, readers := range []int{4, 24} {
		cfg := base
		cfg.Readers = readers
		results, err := bench.Sweep(cfg, figureProtocols, figureThetas, dirFor)
		if err != nil {
			fatal(err)
		}
		all = append(all, results...)
		if !csv {
			title := fmt.Sprintf("Figure 4: contention sweep, concurrent ad-hoc queries = %d "+
				"(tablesize=%d, ops=%d, sync=%t, backend=%s, %s/cell)",
				readers, cfg.TableSize, cfg.TxnOps, cfg.Sync, cfg.Backend, cfg.Duration)
			bench.PrintFigure(os.Stdout, title, results)
			fmt.Println()
		}
	}
	if csv {
		bench.PrintCSV(os.Stdout, all)
	}
}

// runScaling sweeps the number of concurrent writer queries at fixed
// contention to show how the group-commit pipeline scales the commit
// path: throughput should rise with writers while the commit fan-in
// (transactions per leader batch, i.e. per fsync) grows.
func runScaling(base bench.Config, dirFor func(string, float64) string, csv bool) {
	var all []bench.Result
	if !csv {
		fmt.Printf("Commit-path scaling: %s, readers=%d, theta=%.2f, sync=%t, backend=%s\n",
			base.Protocol, base.Readers, base.Theta, base.Sync, base.Backend)
		fmt.Printf("%-10s %14s %14s %12s %12s\n", "writers", "writer-tps", "total-tps", "fan-in", "abort-rate")
	}
	for _, writers := range []int{1, 2, 4, 8, 16} {
		cfg := base
		cfg.Writers = writers
		cfg.Dir = dirFor("scaling", float64(writers))
		res, err := bench.Run(cfg)
		if err != nil {
			fatal(err)
		}
		all = append(all, res)
		if !csv {
			fmt.Printf("%-10d %14.1f %14.1f %12.2f %11.1f%%\n",
				writers, res.WriterTps, res.TotalTps, res.CommitFanIn(), res.AbortRate()*100)
		}
	}
	if csv {
		bench.PrintCSV(os.Stdout, all)
	}
}

// runClaim reproduces one of the Section 5 prose claims.
func runClaim(name string, base bench.Config, dirFor func(string, float64) string) {
	switch name {
	case "c1":
		// BOCC ~5% faster than MVCC at low contention, many readers.
		fmt.Println("Claim C1: BOCC slightly ahead of MVCC at low contention with many ad-hoc queries")
		cfg := base
		cfg.Readers = 24
		cfg.Theta = 0
		for _, proto := range []string{"mvcc", "bocc"} {
			cfg.Protocol = proto
			cfg.Dir = dirFor(proto, 0)
			res, err := bench.Run(cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-5s %10.1f Ktps\n", proto, res.TotalTps/1000)
		}
	case "c2":
		// Readers dominate total throughput under synchronous writes.
		fmt.Println("Claim C2: with synchronous persistence, readers contribute almost all throughput")
		for _, readers := range []int{4, 24} {
			cfg := base
			cfg.Protocol = "mvcc"
			cfg.Readers = readers
			cfg.Dir = dirFor("mvcc", float64(readers))
			res, err := bench.Run(cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  readers=%-3d reader-tps=%10.1f writer-tps=%8.1f reader-share=%5.1f%%\n",
				readers, res.ReaderTps, res.WriterTps, 100*res.ReaderTps/res.TotalTps)
		}
	case "c3":
		// ACID maintained under extreme parallelism and contention.
		fmt.Println("Claim C3: no isolation/consistency violations at theta=2.9 with 24 readers")
		for _, proto := range figureProtocols {
			cfg := base
			cfg.Protocol = proto
			cfg.Readers = 24
			cfg.Theta = 2.9
			cfg.CheckConsistency = true
			cfg.Dir = dirFor(proto, 2.9)
			res, err := bench.Run(cfg)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("  %-5s committed-reads=%-9d violations=%d\n", proto, res.ReaderCommits, res.Violations)
		}
	default:
		fatal(fmt.Errorf("unknown claim %q (want c1, c2 or c3)", name))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sibench:", err)
	os.Exit(1)
}
