// Command smartmeter runs the paper's Figure 1 scenario end to end: smart
// meters from homes and infrastructure feed continuous queries that
// maintain shared transactional states, while ad-hoc analytics query
// those states under snapshot isolation.
//
// Topology (mirroring Figure 1):
//
//	home meters ──▶ TO_TABLE(measurements1) ─┐
//	                                         │ one topology group:
//	infra meters ─▶ window+avg ─▶ TO_TABLE(local_state)
//	                 └──────────▶ TO_TABLE(measurements2)
//	specification table ─▶ verify (reads spec) ─▶ alerts stream
//	ad-hoc: FROM(measurements*, local_state) snapshot analytics
//
// Flags: -meters, -readings, -dir (persistent store; default temp).
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"sistream"
)

func main() {
	meters := flag.Int("meters", 50, "number of smart meters")
	readings := flag.Int("readings", 2000, "readings per meter stream")
	dir := flag.String("dir", "", "data directory (default: temp, removed on exit)")
	flag.Parse()

	root := *dir
	if root == "" {
		tmp, err := os.MkdirTemp("", "smartmeter-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	store, err := sistream.OpenLSM(root, sistream.LSMOptions{})
	if err != nil {
		fatal(err)
	}
	defer store.Close()

	// --- states -----------------------------------------------------------
	ctx := sistream.NewContext()
	meas1, err := ctx.CreateTable("measurements1", store, sistream.TableOptions{SyncCommits: true})
	if err != nil {
		fatal(err)
	}
	meas2, err := ctx.CreateTable("measurements2", store, sistream.TableOptions{SyncCommits: true})
	if err != nil {
		fatal(err)
	}
	local, err := ctx.CreateTable("local_state", store, sistream.TableOptions{SyncCommits: true})
	if err != nil {
		fatal(err)
	}
	spec, err := ctx.CreateTable("specification", store, sistream.TableOptions{})
	if err != nil {
		fatal(err)
	}
	if _, err := ctx.CreateGroup("home", meas1); err != nil {
		fatal(err)
	}
	if _, err := ctx.CreateGroup("infra", meas2, local); err != nil {
		fatal(err)
	}
	if _, err := ctx.CreateGroup("spec", spec); err != nil {
		fatal(err)
	}
	p := sistream.NewSI(ctx)

	// Specification: allowed consumption ceiling per meter.
	tx, err := p.Begin()
	if err != nil {
		fatal(err)
	}
	for m := 0; m < *meters; m++ {
		if err := p.Write(tx, spec, meterKey(m), []byte("9.0")); err != nil {
			fatal(err)
		}
	}
	if err := p.Commit(tx); err != nil {
		fatal(err)
	}

	// --- continuous queries -------------------------------------------------
	top := sistream.NewTopology("smartmeter")

	// Query 1: home meter stream -> measurements1, 20 readings/txn.
	home := top.Source("home-meters", meterSource(*meters, *readings, 1))
	q1 := home.Punctuate(20).Transactions(p)
	q1, st1 := q1.ToTable(p, meas1)
	q1.Discard()

	// Query 2: infrastructure stream -> sliding average into local_state
	// and raw values into measurements2, both states in ONE transaction
	// per batch (the consistency protocol keeps them atomic).
	infra := top.Source("infra-meters", meterSource(*meters, *readings, 2))
	agg := infra.SlidingWindow("avg-30", 30, sistream.Avg).FormatValue("%.3f")
	q2 := agg.Punctuate(20).Transactions(p, meas2, local)
	q2, st2 := q2.ToTable(p, meas2)
	q2 = q2.Map("to-local", func(t sistream.Tuple) sistream.Tuple {
		t.Key = "avg/" + t.Key
		return t
	})
	q2, st3 := q2.ToTable(p, local)
	q2.Discard()

	// Query 3 (verify): consume the committed change feed of
	// measurements1 (TO_STREAM) and check readings against the
	// specification, emitting alerts.
	feed, stopFeed := sistream.ToStream(top, meas1, p)
	alerts := 0
	verified := 0
	feed.Sink("verify", func(e sistream.Element) {
		if e.Kind != sistream.KindData {
			return
		}
		vals, err := sistream.QueryKeys(p, []sistream.TableKey{{Table: spec, Key: e.Tuple.Key}})
		if err != nil || vals[0] == nil {
			return
		}
		verified++
		var limit, got float64
		fmt.Sscanf(string(vals[0]), "%g", &limit)
		fmt.Sscanf(string(e.Tuple.Value), "%g", &got)
		if got > limit {
			alerts++
		}
	})

	// --- ad-hoc analytics alongside the streams ------------------------------
	done := make(chan struct{})
	var snapshots int
	go func() {
		defer close(done)
		for {
			time.Sleep(50 * time.Millisecond)
			rows1, err := sistream.TableSnapshot(p, meas1)
			if err != nil {
				fatal(err)
			}
			rows2, err := sistream.TableSnapshot(p, local)
			if err != nil {
				fatal(err)
			}
			snapshots++
			if len(rows1) >= *meters && len(rows2) >= *meters {
				return
			}
		}
	}()

	start := time.Now()
	top.Start()
	<-done // analytics saw fully populated states
	if err := func() error { stopFeed(); return top.Wait() }(); err != nil {
		fatal(err)
	}

	// --- report ----------------------------------------------------------------
	fmt.Printf("smart metering run complete in %v\n", time.Since(start).Round(time.Millisecond))
	fmt.Printf("  meters=%d readings/meter=%d\n", *meters, *readings)
	fmt.Printf("  query1 (home -> measurements1):   writes=%d commits=%d aborts=%d\n",
		st1.Writes.Load(), st1.Commits.Load(), st1.Aborts.Load())
	fmt.Printf("  query2 (infra -> measurements2):  writes=%d commits=%d\n",
		st2.Writes.Load(), st2.Commits.Load())
	fmt.Printf("  query2 (infra -> local_state):    writes=%d commits=%d\n",
		st3.Writes.Load(), st3.Commits.Load())
	fmt.Printf("  verify: checked=%d alerts=%d\n", verified, alerts)
	fmt.Printf("  ad-hoc snapshots taken: %d\n", snapshots)

	// Final consistent report across all states (FROM on tables).
	final, err := sistream.TableSnapshot(p, local)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  local_state rows: %d (sliding 30-reading averages)\n", len(final))
}

// meterSource generates per-meter consumption readings.
func meterSource(meters, readings int, seed int64) func(emit func(sistream.Element)) error {
	return func(emit func(sistream.Element)) error {
		rng := rand.New(rand.NewSource(seed))
		for r := 0; r < readings; r++ {
			m := rng.Intn(meters)
			val := 5 + rng.Float64()*5 // 5..10 kW, sometimes above the 9.0 spec
			emit(sistream.DataElement(sistream.Tuple{
				Key:   meterKey(m),
				Value: []byte(fmt.Sprintf("%.3f", val)),
				Num:   val,
				Ts:    int64(r),
			}))
		}
		return nil
	}
}

func meterKey(m int) string { return fmt.Sprintf("meter-%04d", m) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "smartmeter:", err)
	os.Exit(1)
}
