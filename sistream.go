package sistream

import (
	"sistream/internal/kv"
	"sistream/internal/lsm"
	"sistream/internal/stream"
	"sistream/internal/txn"
)

// Transactional state management (the paper's Section 4).
type (
	// Context is the global state context: registry of states, topology
	// groups and active transactions, plus the logical clock.
	Context = txn.Context
	// Table is a transactional, multi-versioned, queryable state.
	Table = txn.Table
	// TableOptions configures version slots and commit durability.
	TableOptions = txn.TableOptions
	// Group is a topology group whose states commit atomically together.
	Group = txn.Group
	// Txn is a transaction handle.
	Txn = txn.Txn
	// Protocol is the common interface of the concurrency-control
	// protocols (SI, S2PL, BOCC).
	Protocol = txn.Protocol
	// StateID names a state; GroupID names a topology group.
	StateID = txn.StateID
	// GroupID names a topology group.
	GroupID = txn.GroupID
	// Timestamp is the logical commit timestamp.
	Timestamp = txn.Timestamp
	// FeedEvent is one committed transaction's changes to a table,
	// restricted to one partition of a partitioned change feed
	// (Table.WatchPartitioned).
	FeedEvent = txn.FeedEvent
	// PartitionedFeed is the handle of a partitioned change feed:
	// per-partition event channels, stop control, and the delivery
	// acknowledgements that advance the feed's GC-horizon pin.
	PartitionedFeed = txn.PartitionedFeed
	// Chain is the serial-commit token of one windowed stream query:
	// transactions attached to a chain may overlap inside the window
	// while committing strictly in order, with conflicts between chain
	// members exempted as serial history (see TransactionsWindow).
	Chain = txn.Chain
	// ChainCommitter is implemented by protocols whose commit path can
	// take a whole chain window at once — one group-commit batch for
	// several consecutive transactions (SI, S2PL and BOCC all do).
	ChainCommitter = txn.ChainCommitter
	// GCTableStats reports a table's explicit sweep activity: runs,
	// reclaimed version slots and swept shards (Table.GCStats).
	GCTableStats = txn.GCTableStats
	// FeedOptions configures a partitioned change feed beyond the
	// partition count: buffer depth, routing hash, and the opt-in
	// newest-wins coalescing (changelog) delivery mode that never pins
	// the GC horizon (Table.WatchPartitionedOpts).
	FeedOptions = txn.FeedOptions
	// CommitProfile is a topology group's observed commit-path profile:
	// per-batch sync and install latency summaries plus the batch-size
	// EWMA the group-commit leader records (Group.CommitProfile).
	CommitProfile = txn.CommitProfile
	// Snapshot is a consistent analytical read view: one commit timestamp
	// pinned across one or more tables (Context.Snapshot), serving point
	// reads, full/range/lane-parallel scans and index lookups, all
	// wait-free against writers and protected from GC until Release.
	Snapshot = txn.Snapshot
	// Index is a transactional secondary index over one table
	// (Table.CreateIndex), maintained on the commit path itself so it is
	// never ahead of or behind its table under any protocol.
	Index = txn.Index
	// IndexKeyFunc derives a row's index key; ok=false excludes the row
	// (a partial index).
	IndexKeyFunc = txn.IndexKeyFunc
	// IndexStats are an index's lifetime counters (Index.Stats).
	IndexStats = txn.IndexStats
)

// DefaultFeedBuf is the default commit buffer of change feeds (ToStream,
// FromTablePartitioned): how many commits queue before the committing
// thread blocks.
const DefaultFeedBuf = txn.DefaultFeedBuf

// Dataflow (the paper's Section 3 transaction model for streams).
type (
	// Topology is a dataflow query graph.
	Topology = stream.Topology
	// Stream is one dataflow edge.
	Stream = stream.Stream
	// Element is a data tuple or transaction punctuation.
	Element = stream.Element
	// Tuple is a stream data record.
	Tuple = stream.Tuple
	// Kind discriminates data from punctuations.
	Kind = stream.Kind
	// ParallelRegion is a keyed parallel section of a topology: P lanes
	// between a Parallelize router and a transaction-preserving Merge
	// barrier.
	ParallelRegion = stream.ParallelRegion
	// AggFunc folds a window of samples.
	AggFunc = stream.AggFunc
	// TableKey addresses one point read of QueryKeys.
	TableKey = stream.TableKey
	// KV is one row of a snapshot query result.
	KV = stream.KV
	// KeyFn is a shareable partitioning token: passing the SAME *KeyFn to
	// Parallelize / Reparallelize / FromTablePartitioned proves the stages
	// agree on key placement, which lets Reparallelize fuse lane-for-lane
	// instead of inserting a merge barrier and a fresh router.
	KeyFn = stream.KeyFn
	// AutoTune configures the self-tuning commit spine (NewAutoTuner):
	// window bound, per-batch latency ceiling, linger cap and decision
	// cadence. The zero value of every field selects its default.
	AutoTune = stream.AutoTune
	// AutoTuner is the controller of one self-tuning pipeline: pass it to
	// both Stream.TransactionsTuned and ParallelRegion.MergeTuned; it
	// sizes the commit window and linger from observed commit latency.
	AutoTuner = stream.AutoTuner
	// AutoTunerStats is a point-in-time controller snapshot
	// (AutoTuner.Stats): current window/linger and resize counts.
	AutoTunerStats = stream.AutoTunerStats
	// PlanStep is one step of a topology's recorded query plan
	// (Topology.Plan, rendered by Explain): its kind, name, construction
	// decision and a live runtime sample.
	PlanStep = stream.PlanStep
)

// Base tables and the storage adapter registry.
type (
	// Store is the key-value base-table interface.
	Store = kv.Store
	// LSMOptions configures the persistent store.
	LSMOptions = lsm.Options
	// StoreCapabilities are the per-backend capability flags a storage
	// adapter declares (Durable, Persistent, SupportsSync); the
	// group-commit leader consults them to skip sync points over
	// backends that have none.
	StoreCapabilities = kv.Capabilities
	// StoreDriver is one registered storage adapter (RegisterStore).
	StoreDriver = kv.Driver
	// StoreOpenOptions carries chain-wide defaults for OpenStore, such
	// as the data directory of persistent layers.
	StoreOpenOptions = kv.OpenOptions
	// OpenedStore is the store chain resolved from a backend spec:
	// Store plus the composed capability flags and per-layer access
	// (cache-tier counters, the fault wrapper's scripting surface).
	OpenedStore = kv.OpenedStore
	// CacheStore is the chainable read-through/write-behind cache tier
	// ("cache(256)+lsm"); its write-behind set flushes at every
	// durability point, preserving group-commit semantics.
	CacheStore = kv.Cache
	// CacheStoreStats are the cache tier's hit/miss/evict/dirty
	// counters (CacheStore.Stats).
	CacheStoreStats = kv.CacheStats
)

// Element kinds (transaction boundary punctuations).
const (
	KindData     = stream.KindData
	KindBOT      = stream.KindBOT
	KindCommit   = stream.KindCommit
	KindRollback = stream.KindRollback
)

// Re-exported constructors and helpers.
var (
	// NewContext creates an empty state context.
	NewContext = txn.NewContext
	// NewSI creates the paper's MVCC snapshot-isolation protocol.
	NewSI = txn.NewSI
	// NewS2PL creates the strict two-phase locking baseline.
	NewS2PL = txn.NewS2PL
	// NewBOCC creates the optimistic (backward validation) baseline.
	NewBOCC = txn.NewBOCC
	// IsAbort reports whether an error is a retryable transaction abort.
	IsAbort = txn.IsAbort
	// NewChain creates an empty commit chain for a windowed stream query
	// (Stream.TransactionsWindow attaches one automatically).
	NewChain = txn.NewChain
	// DefaultKeyHash is the routing hash Parallelize and the partitioned
	// change feed default to; pass it (or share a custom function)
	// wherever ingest lanes and feed partitions must agree on placement.
	DefaultKeyHash = txn.DefaultKeyHash

	// NewTopology creates an empty dataflow query.
	NewTopology = stream.New
	// MergeStreams fans several streams into one.
	MergeStreams = stream.Merge
	// ToStream is the TO_STREAM linking operator (per-commit trigger).
	ToStream = stream.ToStream
	// FromTablePartitioned is the partitioned TO_STREAM linking operator:
	// per-partition commit watchers exposed as the lanes of a
	// ParallelRegion, re-serialized by its Merge barrier.
	FromTablePartitioned = stream.FromTablePartitioned
	// TableSnapshot is the ad-hoc FROM(table) snapshot query.
	TableSnapshot = stream.TableSnapshot
	// FromSnapshot streams a pinned Snapshot's rows of one table as a
	// lane-parallel scan source (the analytical FROM(table) source).
	FromSnapshot = stream.FromSnapshot
	// Explain renders a topology's recorded query plan: every step's
	// construction decisions (fusion, lanes, reroutes, window mode) plus
	// live runtime figures (channel occupancy, tuner position, counters).
	Explain = stream.Explain
	// QueryKeys runs point reads under one read-only transaction.
	QueryKeys = stream.QueryKeys
	// DataElement wraps a tuple into a stream element.
	DataElement = stream.DataElement
	// Punctuation constructs a control element.
	Punctuation = stream.Punctuation
	// NewKeyFn builds a shareable partitioning token from one key-string
	// hash, usable on both the ingest side and the feed side.
	NewKeyFn = stream.NewKeyFn
	// NewAutoTuner creates the self-tuning commit-spine controller,
	// starting at window 1 (no batching until measurements justify it).
	NewAutoTuner = stream.NewAutoTuner

	// NewMemStore creates a volatile in-memory base table.
	NewMemStore = func() Store { return kv.NewMem() }
	// OpenLSM opens (creating if needed) a persistent LSM base table.
	OpenLSM = func(dir string, opts LSMOptions) (Store, error) { return lsm.Open(dir, opts) }
	// OpenStore resolves a backend spec through the storage adapter
	// registry and opens the chain: "mem", "lsm:<dir>",
	// "cache(256)+lsm", "fault+mem", ... Importing this package
	// registers every built-in backend.
	OpenStore = kv.Open
	// RegisterStore makes a storage adapter available to OpenStore
	// under a name; third-party backends plug in here.
	RegisterStore = kv.Register
	// StoreDrivers lists the registered storage adapter names.
	StoreDrivers = kv.Drivers
	// StoreSpecCaps validates a backend spec and returns its composed
	// capability flags without opening anything.
	StoreSpecCaps = kv.SpecCaps
	// StoreCapabilitiesOf returns a store's declared capability flags
	// (the conservative durable/persistent/sync default for stores that
	// declare none).
	StoreCapabilitiesOf = kv.CapabilitiesOf
	// NewCacheStore wraps a store in the cache tier directly (the
	// "cache(n)+..." spec layer does the same through OpenStore).
	NewCacheStore = kv.NewCache

	// Window aggregate functions.
	Sum   = stream.Sum
	Avg   = stream.Avg
	Min   = stream.Min
	Max   = stream.Max
	Count = stream.Count
)

// Errors re-exported for callers handling abort/retry loops.
var (
	ErrAborted    = txn.ErrAborted
	ErrConflict   = txn.ErrConflict
	ErrValidation = txn.ErrValidation
	ErrDeadlock   = txn.ErrDeadlock
	ErrFinished   = txn.ErrFinished
)
