// Package sistream is a Go reproduction of "Snapshot Isolation for
// Transactional Stream Processing" (Götze & Sattler, EDBT 2019): a
// transactional stream processing library combining continuous queries,
// shared queryable states (tables) with MVCC snapshot isolation, a
// consistency protocol for multi-state transactions, and ad-hoc snapshot
// queries — plus the S2PL and BOCC baselines the paper evaluates against
// and a persistent LSM key-value store as the base table.
//
// # Concurrency architecture
//
// The transactional core is built to keep readers and writers off each
// other's locks at every layer (see DESIGN.md for the full picture):
//
//   - The state registry (Context) is striped over 64 independently
//     latched shards keyed by FNV-1a of the state/group ID, so
//     Begin/lookup/Register scale with cores; the active-transaction
//     table is latch-free (CAS bit vectors).
//   - Commits of one topology group flow through a group-commit
//     pipeline: concurrent committers enqueue validated write sets, a
//     batch leader assigns a contiguous timestamp range, admits each
//     transaction under First-Committer-Wins (against installed versions
//     plus earlier same-batch admissions), persists one coalesced batch
//     per base store — a single fsync amortized over the whole batch —
//     installs all versions and publishes the group's LastCTS once.
//     Transactions spanning groups fall back to taking every involved
//     group's commit latch in canonical order, so cross-group commits
//     stay deadlock-free and atomic.
//   - Per-key version arrays are append-in-place RCU: versions ascend by
//     commit timestamp, a new version is published by one atomic store of
//     the element count and readers scan lock-free — a snapshot read
//     never contends with the commit apply path, however hot the key,
//     and the install fast path allocates nothing but the value.
//   - The dataflow engine is vectorized: edges carry element batches,
//     chains of stateless operators fuse into their consumer's goroutine,
//     and TO_TABLE applies each transaction's tuples through a batched
//     write API (Protocol.WriteBatch) — one snapshot pin and one latch
//     acquisition per batch. See DESIGN.md "Vectorized dataflow".
//
// Group.CommitStats reports the pipeline's achieved batching;
// cmd/sibench -scaling sweeps it against writer concurrency.
//
// The façade re-exports the user-facing API of the internal packages:
//
//	sistream.NewContext / CreateTable / CreateGroup  state management
//	sistream.NewSI / NewS2PL / NewBOCC               protocols
//	sistream.NewTopology + Stream operators          dataflow queries
//	sistream.OpenLSM / NewMemStore                   base tables
//
// A minimal write-then-query program:
//
//	store := sistream.NewMemStore()
//	ctx := sistream.NewContext()
//	tbl, _ := ctx.CreateTable("events", store, sistream.TableOptions{})
//	ctx.CreateGroup("g", tbl)
//	p := sistream.NewSI(ctx)
//	tx, _ := p.Begin()
//	p.Write(tx, tbl, "k", []byte("v"))
//	p.Commit(tx)
//	rows, _ := sistream.TableSnapshot(p, tbl)
//
// See examples/ for complete programs and DESIGN.md for the architecture.
package sistream

import (
	"sistream/internal/kv"
	"sistream/internal/lsm"
	"sistream/internal/stream"
	"sistream/internal/txn"
)

// Transactional state management (the paper's Section 4).
type (
	// Context is the global state context: registry of states, topology
	// groups and active transactions, plus the logical clock.
	Context = txn.Context
	// Table is a transactional, multi-versioned, queryable state.
	Table = txn.Table
	// TableOptions configures version slots and commit durability.
	TableOptions = txn.TableOptions
	// Group is a topology group whose states commit atomically together.
	Group = txn.Group
	// Txn is a transaction handle.
	Txn = txn.Txn
	// Protocol is the common interface of the concurrency-control
	// protocols (SI, S2PL, BOCC).
	Protocol = txn.Protocol
	// StateID names a state; GroupID names a topology group.
	StateID = txn.StateID
	// GroupID names a topology group.
	GroupID = txn.GroupID
	// Timestamp is the logical commit timestamp.
	Timestamp = txn.Timestamp
)

// Dataflow (the paper's Section 3 transaction model for streams).
type (
	// Topology is a dataflow query graph.
	Topology = stream.Topology
	// Stream is one dataflow edge.
	Stream = stream.Stream
	// Element is a data tuple or transaction punctuation.
	Element = stream.Element
	// Tuple is a stream data record.
	Tuple = stream.Tuple
	// Kind discriminates data from punctuations.
	Kind = stream.Kind
	// ParallelRegion is a keyed parallel section of a topology: P lanes
	// between a Parallelize router and a transaction-preserving Merge
	// barrier.
	ParallelRegion = stream.ParallelRegion
	// AggFunc folds a window of samples.
	AggFunc = stream.AggFunc
	// TableKey addresses one point read of QueryKeys.
	TableKey = stream.TableKey
	// KV is one row of a snapshot query result.
	KV = stream.KV
)

// Base tables.
type (
	// Store is the key-value base-table interface.
	Store = kv.Store
	// LSMOptions configures the persistent store.
	LSMOptions = lsm.Options
)

// Element kinds (transaction boundary punctuations).
const (
	KindData     = stream.KindData
	KindBOT      = stream.KindBOT
	KindCommit   = stream.KindCommit
	KindRollback = stream.KindRollback
)

// Re-exported constructors and helpers.
var (
	// NewContext creates an empty state context.
	NewContext = txn.NewContext
	// NewSI creates the paper's MVCC snapshot-isolation protocol.
	NewSI = txn.NewSI
	// NewS2PL creates the strict two-phase locking baseline.
	NewS2PL = txn.NewS2PL
	// NewBOCC creates the optimistic (backward validation) baseline.
	NewBOCC = txn.NewBOCC
	// IsAbort reports whether an error is a retryable transaction abort.
	IsAbort = txn.IsAbort

	// NewTopology creates an empty dataflow query.
	NewTopology = stream.New
	// MergeStreams fans several streams into one.
	MergeStreams = stream.Merge
	// ToStream is the TO_STREAM linking operator (per-commit trigger).
	ToStream = stream.ToStream
	// TableSnapshot is the ad-hoc FROM(table) snapshot query.
	TableSnapshot = stream.TableSnapshot
	// QueryKeys runs point reads under one read-only transaction.
	QueryKeys = stream.QueryKeys
	// DataElement wraps a tuple into a stream element.
	DataElement = stream.DataElement
	// Punctuation constructs a control element.
	Punctuation = stream.Punctuation

	// NewMemStore creates a volatile in-memory base table.
	NewMemStore = func() Store { return kv.NewMem() }
	// OpenLSM opens (creating if needed) a persistent LSM base table.
	OpenLSM = func(dir string, opts LSMOptions) (Store, error) { return lsm.Open(dir, opts) }

	// Window aggregate functions.
	Sum   = stream.Sum
	Avg   = stream.Avg
	Min   = stream.Min
	Max   = stream.Max
	Count = stream.Count
)

// Errors re-exported for callers handling abort/retry loops.
var (
	ErrAborted    = txn.ErrAborted
	ErrConflict   = txn.ErrConflict
	ErrValidation = txn.ErrValidation
	ErrDeadlock   = txn.ErrDeadlock
	ErrFinished   = txn.ErrFinished
)
